// IO actions, interrupts, and IRQ steering.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "hw/disk.hpp"
#include "hw/topology.hpp"
#include "os/kernel.hpp"
#include "sim/engine.hpp"

namespace pinsim::os {
namespace {

class IrqRecorder : public SchedObserver {
 public:
  void on_irq(int cpu) override { irq_cpus.insert(cpu); }
  std::set<int> irq_cpus;
};

/// Driver: loop { compute, read }, then exit.
std::unique_ptr<TaskDriver> io_loop(hw::IoDevice& device, SimDuration work,
                                    int iterations) {
  auto n = std::make_shared<int>(0);
  auto io_next = std::make_shared<bool>(false);
  return std::make_unique<LambdaDriver>(
      [&device, n, io_next, work, iterations](Task&) {
        if (*n >= iterations) return Action::exit();
        if (!*io_next) {
          *io_next = true;
          return Action::compute(work);
        }
        *io_next = false;
        ++*n;
        return Action::io(device, hw::IoRequest{hw::IoKind::Read, 4.0});
      });
}

struct Harness {
  explicit Harness(const hw::Topology& topo, std::uint64_t seed = 1)
      : topology(topo),
        kernel(engine, topology, costs, Rng(seed)),
        disk(hw::IoDevice::raid1_hdd(engine, Rng(seed + 1))) {}
  sim::Engine engine;
  hw::Topology topology;
  hw::CostModel costs;
  Kernel kernel;
  hw::IoDevice disk;
};

TEST(KernelIoTest, IoBlocksAndResumes) {
  Harness h(hw::Topology(1, 2, 1, 16.0));
  Task& t = h.kernel.create_task("reader", io_loop(h.disk, msec(1), 5));
  h.kernel.start_task(t);
  EXPECT_TRUE(h.kernel.run_until_quiescent());
  EXPECT_EQ(t.stats.io_ops, 5);
  EXPECT_GT(t.stats.block_time, 0);
  EXPECT_EQ(t.state, TaskState::Finished);
  EXPECT_EQ(h.disk.completed(), 5);
  EXPECT_EQ(h.kernel.stats().irqs, 5);
}

TEST(KernelIoTest, BlockTimeMatchesDeviceLatency) {
  Harness h(hw::Topology(1, 1, 1, 16.0));
  Task& t = h.kernel.create_task("reader", io_loop(h.disk, usec(100), 20));
  h.kernel.start_task(t);
  EXPECT_TRUE(h.kernel.run_until_quiescent());
  // Block time should be close to the sum of device latencies.
  const double device_total =
      h.disk.latency().sum();  // seconds across 20 ops
  EXPECT_NEAR(to_seconds(t.stats.block_time), device_total, 0.002);
}

TEST(KernelIoTest, IrqStealsTimeFromRunningTask) {
  // One cpu: a cpu hog runs while a reader's completions interrupt it.
  Harness h(hw::Topology(1, 1, 1, 16.0));
  auto hog_state = std::make_shared<bool>(false);
  Task& hog = h.kernel.create_task(
      "hog", std::make_unique<LambdaDriver>([hog_state](Task&) {
        if (*hog_state) return Action::exit();
        *hog_state = true;
        return Action::compute(msec(200));
      }));
  Task& reader = h.kernel.create_task("reader", io_loop(h.disk, usec(10), 10));
  h.kernel.start_task(hog);
  h.kernel.start_task(reader);
  EXPECT_TRUE(h.kernel.run_until_quiescent());
  // The hog's cpu time exceeds its pure work by the stolen overheads.
  EXPECT_GT(hog.stats.cpu_time, msec(200));
  EXPECT_GT(hog.stats.overhead_paid, 0);
}

TEST(KernelIoTest, IrqSteeredToPinnedTasksCpu) {
  Harness h(hw::Topology::dell_r830());
  IrqRecorder recorder;
  h.kernel.add_observer(recorder);
  TaskConfig config;
  config.affinity = hw::CpuSet::of({5});
  Task& t = h.kernel.create_task("pinned-reader",
                                 io_loop(h.disk, usec(50), 15), config);
  h.kernel.start_task(t);
  EXPECT_TRUE(h.kernel.run_until_quiescent());
  ASSERT_FALSE(recorder.irq_cpus.empty());
  for (int cpu : recorder.irq_cpus) {
    EXPECT_EQ(cpu, 5);
  }
}

TEST(KernelIoTest, UnpinnedIrqsSpreadRoundRobin) {
  Harness h(hw::Topology::dell_r830());
  IrqRecorder recorder;
  h.kernel.add_observer(recorder);
  Task& t = h.kernel.create_task("reader", io_loop(h.disk, usec(50), 30));
  h.kernel.start_task(t);
  EXPECT_TRUE(h.kernel.run_until_quiescent());
  EXPECT_GT(recorder.irq_cpus.size(), 10u);
}

TEST(KernelIoTest, ManyConcurrentIoTasksFinish) {
  Harness h(hw::Topology(1, 8, 2, 16.0));
  for (int i = 0; i < 50; ++i) {
    Task& t = h.kernel.create_task("r" + std::to_string(i),
                                   io_loop(h.disk, usec(200), 8));
    h.kernel.start_task(t);
  }
  EXPECT_TRUE(h.kernel.run_until_quiescent());
  EXPECT_EQ(h.disk.completed(), 400);
  EXPECT_EQ(h.kernel.live_tasks(), 0);
}

TEST(KernelIoTest, IoActiveFlagSetAfterFirstIo) {
  Harness h(hw::Topology(1, 2, 1, 16.0));
  Task& t = h.kernel.create_task("reader", io_loop(h.disk, usec(10), 1));
  EXPECT_FALSE(t.io_active);
  h.kernel.start_task(t);
  EXPECT_TRUE(h.kernel.run_until_quiescent());
  EXPECT_TRUE(t.io_active);
}

}  // namespace
}  // namespace pinsim::os
