// Idle/busy placement-mask invariants.
//
// Wakeup placement is pure mask arithmetic over idle_, idle_socket_ and
// busy_, which are maintained incrementally (refresh_cpu_masks) at every
// core-state mutation. This test recomputes the masks from scratch from
// the per-core state at many points of a busy mixed workload and checks
// the incremental copies never drift.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hw/topology.hpp"
#include "os/kernel.hpp"
#include "sim/engine.hpp"

namespace pinsim::os {

// Friend of Kernel (shared with bench/micro_sched.cpp); gives the test
// access to the private masks and core states.
struct SchedBenchAccess {
  static void expect_masks_consistent(const Kernel& kernel) {
    const hw::Topology& topo = *kernel.topology_;
    hw::CpuSet idle;
    hw::CpuSet busy;
    std::vector<hw::CpuSet> idle_socket(
        static_cast<std::size_t>(topo.sockets()));
    for (int cpu = 0; cpu < topo.num_cpus(); ++cpu) {
      const auto i = static_cast<std::size_t>(cpu);
      if (kernel.current_[i] != nullptr) busy.add(cpu);
      if (kernel.current_[i] == nullptr && kernel.rq_[i].empty()) {
        idle.add(cpu);
        idle_socket[static_cast<std::size_t>(topo.socket_of(cpu))].add(cpu);
      }
    }
    EXPECT_EQ(kernel.idle_.to_string(), idle.to_string());
    EXPECT_EQ(kernel.busy_.to_string(), busy.to_string());
    ASSERT_EQ(kernel.idle_socket_.size(), idle_socket.size());
    for (std::size_t s = 0; s < idle_socket.size(); ++s) {
      EXPECT_EQ(kernel.idle_socket_[s].to_string(),
                idle_socket[s].to_string())
          << "socket " << s;
    }
  }
};

namespace {

std::unique_ptr<TaskDriver> compute_sleep_loop(SimDuration work,
                                               SimDuration sleep,
                                               int iterations) {
  auto n = std::make_shared<int>(0);
  auto sleeping = std::make_shared<bool>(false);
  return std::make_unique<LambdaDriver>(
      [n, sleeping, work, sleep, iterations](Task&) {
        if (*n >= iterations) return Action::exit();
        if (!*sleeping) {
          *sleeping = true;
          return Action::compute(work);
        }
        *sleeping = false;
        ++*n;
        return Action::sleep_for(sleep);
      });
}

TEST(SchedMasksTest, MasksMatchRecomputeThroughoutBusyRun) {
  sim::Engine engine;
  // Multi-socket topology so the per-socket masks are exercised, with
  // more runnable tasks than cpus so cores oscillate idle/busy and the
  // balancer migrates work.
  hw::Topology topo(2, 3, 1, 16.0);
  hw::CostModel costs;
  Kernel kernel(engine, topo, costs, Rng(11));
  SchedBenchAccess::expect_masks_consistent(kernel);  // all idle at boot

  std::vector<Task*> tasks;
  for (int i = 0; i < 10; ++i) {
    Task& t = kernel.create_task(
        "w" + std::to_string(i),
        compute_sleep_loop(msec(2 + i % 3), msec(1 + i % 2), 12), {});
    kernel.start_task(t);
    tasks.push_back(&t);
  }
  // Step through the run, validating at every pause point.
  bool done = false;
  for (int step = 1; step <= 120 && !done; ++step) {
    done = kernel.run_until_quiescent(msec(step));
    SchedBenchAccess::expect_masks_consistent(kernel);
  }
  EXPECT_TRUE(kernel.run_until_quiescent());
  SchedBenchAccess::expect_masks_consistent(kernel);  // all idle again
  for (Task* task : tasks) {
    EXPECT_EQ(task->state, TaskState::Finished);
  }
}

TEST(SchedMasksTest, MasksMatchRecomputeWithCpusetAndQuota) {
  sim::Engine engine;
  hw::Topology topo(2, 2, 2, 16.0);
  hw::CostModel costs;
  Kernel kernel(engine, topo, costs, Rng(5));
  Cgroup& group =
      kernel.create_cgroup({"cn", 0.5, hw::CpuSet::first_n(2)});
  for (int i = 0; i < 3; ++i) {
    TaskConfig config;
    config.cgroup = &group;
    Task& t = kernel.create_task("g" + std::to_string(i),
                                 compute_sleep_loop(msec(4), msec(1), 8),
                                 config);
    kernel.start_task(t);
  }
  Task& free_task =
      kernel.create_task("free", compute_sleep_loop(msec(3), msec(2), 10), {});
  kernel.start_task(free_task);

  bool done = false;
  for (int step = 1; step <= 400 && !done; ++step) {
    done = kernel.run_until_quiescent(msec(step));
    SchedBenchAccess::expect_masks_consistent(kernel);
  }
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace pinsim::os
