// Parked-task bookkeeping (bandwidth throttling) and its order
// independence: unpark is swap-and-pop (O(1) via Task::park_index), so
// the parked list's internal order is an implementation detail that must
// never leak into simulation results.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "hw/topology.hpp"
#include "os/cgroup.hpp"
#include "os/kernel.hpp"
#include "sim/engine.hpp"
#include "util/check.hpp"

namespace pinsim::os {
namespace {

std::unique_ptr<Task> make_task(Task::Id id) {
  return std::make_unique<Task>(
      id, "t" + std::to_string(id),
      std::make_unique<LambdaDriver>([](Task&) { return Action::exit(); }));
}

TEST(CgroupParkedTest, ParkUnparkMaintainsIndices) {
  hw::CostModel costs;
  Cgroup group({"cn", 1.0, {}}, costs);
  auto a = make_task(1);
  auto b = make_task(2);
  auto c = make_task(3);
  group.park(*a);
  group.park(*b);
  group.park(*c);
  EXPECT_TRUE(group.is_parked(*a));
  EXPECT_TRUE(group.is_parked(*b));
  EXPECT_TRUE(group.is_parked(*c));
  EXPECT_EQ(group.parked().size(), 3u);

  // Remove the middle entry: swap-and-pop moves the tail into its slot.
  group.unpark(*b);
  EXPECT_FALSE(group.is_parked(*b));
  EXPECT_EQ(b->park_index, -1);
  EXPECT_TRUE(group.is_parked(*a));
  EXPECT_TRUE(group.is_parked(*c));
  EXPECT_EQ(group.parked().size(), 2u);
  // The survivors' indices must still point at their own slots.
  for (std::size_t i = 0; i < group.parked().size(); ++i) {
    EXPECT_EQ(group.parked()[i]->park_index, static_cast<int>(i));
  }
}

TEST(CgroupParkedTest, DoubleParkAndForeignUnparkRejected) {
  hw::CostModel costs;
  Cgroup group({"cn", 1.0, {}}, costs);
  auto a = make_task(1);
  auto b = make_task(2);
  group.park(*a);
  EXPECT_THROW(group.park(*a), InvariantViolation);
  EXPECT_THROW(group.unpark(*b), InvariantViolation);
}

TEST(CgroupParkedTest, TakeParkedPreservesThrottleOrderAndResets) {
  hw::CostModel costs;
  Cgroup group({"cn", 1.0, {}}, costs);
  auto a = make_task(1);
  auto b = make_task(2);
  auto c = make_task(3);
  group.park(*a);
  group.park(*b);
  group.park(*c);
  const std::vector<Task*> taken = group.take_parked();
  EXPECT_EQ(taken, (std::vector<Task*>{a.get(), b.get(), c.get()}));
  EXPECT_TRUE(group.parked().empty());
  EXPECT_EQ(a->park_index, -1);
  EXPECT_EQ(b->park_index, -1);
  EXPECT_EQ(c->park_index, -1);
  // Taken tasks can be parked again (unthrottle may re-park on a
  // still-throttled sibling cpu).
  group.park(*b);
  EXPECT_TRUE(group.is_parked(*b));
}

TEST(CgroupParkedTest, RemoveMemberUnparks) {
  hw::CostModel costs;
  Cgroup group({"cn", 1.0, {}}, costs);
  auto a = make_task(1);
  group.add_member(*a);
  group.park(*a);
  group.remove_member(*a);
  EXPECT_FALSE(group.is_parked(*a));
  EXPECT_TRUE(group.parked().empty());
  EXPECT_EQ(a->park_index, -1);
}

// Regression: simulation results must not depend on the parked list's
// internal order (swap-and-pop unpark permutes it relative to an
// order-preserving erase). When the cpu is busy at unthrottle time,
// every parked task re-enters through the runqueue and execution order
// is purely (vruntime, id)-driven, so a permuted parked list must yield
// bit-identical results. (With an idle cpu the first re-enqueued task
// dispatches immediately — there refill order is semantically load-
// bearing, unchanged from the historical scheduler, and deterministic
// because throttle order is.) A long-running non-group task keeps the
// cpu busy across every refill.
TEST(CgroupParkedTest, ParkedOrderDoesNotAffectResults) {
  struct Outcome {
    SimTime makespan;
    SimDuration usage;
    std::vector<SimTime> finish_times;  // per task, in creation order
  };
  auto compute_once = [](SimDuration work) {
    auto state = std::make_shared<bool>(false);
    return std::make_unique<LambdaDriver>([state, work](Task&) {
      if (*state) return Action::exit();
      *state = true;
      return Action::compute(work);
    });
  };
  auto run = [&](bool permute) {
    sim::Engine engine;
    hw::Topology topo(1, 1, 1, 16.0);
    hw::CostModel costs;
    Kernel kernel(engine, topo, costs, Rng(7));
    Task& blocker =
        kernel.create_task("blocker", compute_once(msec(400)), {});
    kernel.start_task(blocker);
    Cgroup& group = kernel.create_cgroup({"cn", 0.2, {}});
    std::vector<Task*> tasks;
    for (int i = 0; i < 4; ++i) {
      TaskConfig config;
      config.cgroup = &group;
      Task& t = kernel.create_task("w" + std::to_string(i),
                                   compute_once(msec(30)), config);
      kernel.start_task(t);
      tasks.push_back(&t);
    }
    if (permute) {
      // Pause while the group is throttled with tasks parked, then
      // reverse the parked list in place.
      kernel.run_until_quiescent(msec(60));
      std::vector<Task*> parked = group.take_parked();
      EXPECT_GE(parked.size(), 2u);
      std::reverse(parked.begin(), parked.end());
      for (Task* task : parked) group.park(*task);
    }
    EXPECT_TRUE(kernel.run_until_quiescent());
    Outcome outcome;
    outcome.makespan = engine.now();
    outcome.usage = group.stats().usage;
    for (Task* task : tasks) {
      outcome.finish_times.push_back(task->stats.finished_at);
    }
    return outcome;
  };
  const Outcome control = run(false);
  const Outcome permuted = run(true);
  EXPECT_EQ(control.makespan, permuted.makespan);
  EXPECT_EQ(control.usage, permuted.usage);
  EXPECT_EQ(control.finish_times, permuted.finish_times);
}

}  // namespace
}  // namespace pinsim::os
